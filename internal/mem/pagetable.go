package mem

import "fmt"

// Perm is a page permission mask.
type Perm uint8

const (
	PermRead  Perm = 1 << 0
	PermWrite Perm = 1 << 1
	PermExec  Perm = 1 << 2
	PermRW         = PermRead | PermWrite
	PermRWX        = PermRead | PermWrite | PermExec
)

// Has reports whether every permission in want is granted.
func (p Perm) Has(want Perm) bool { return p&want == want }

func (p Perm) String() string {
	buf := []byte("---")
	if p.Has(PermRead) {
		buf[0] = 'r'
	}
	if p.Has(PermWrite) {
		buf[1] = 'w'
	}
	if p.Has(PermExec) {
		buf[2] = 'x'
	}
	return string(buf)
}

// PageTable is a real 4-level radix page table, 9 bits per level, mapping
// page frames in one address space to page frames in another. It serves as:
//
//   - an EPT (guest-physical → host-physical, CPU accesses),
//   - an IOMMU translation table (device DMA addresses → physical),
//   - the combined shadow table virtual-passthrough builds (Ln guest-physical
//     → L1 guest-physical, paper Figure 6).
//
// Walks traverse the actual radix structure so their cost (levels touched)
// is an output of the data structure, not a constant.
type PageTable struct {
	root   *ptNode
	mapped int
}

// ptLevels is the radix depth: 4 levels of 9 bits cover 48-bit addresses.
const ptLevels = 4

type ptNode struct {
	entries [512]ptEntry
}

type ptEntry struct {
	next     *ptNode // interior pointer (nil at leaf level)
	pfn      PFN     // leaf target frame
	perms    Perm
	present  bool
	accessed bool
	dirty    bool
	// huge marks a level-3 leaf covering HugePageFrames frames (a 2 MiB
	// mapping), the large-page optimization real EPTs use to shorten walks.
	huge bool
}

// HugePageFrames is the span of one huge mapping: 512 base frames = 2 MiB.
const HugePageFrames = 512

// NewPageTable returns an empty table.
func NewPageTable() *PageTable {
	return &PageTable{root: &ptNode{}}
}

// indices splits a frame number into its per-level radix indices, highest
// level first.
func indices(p PFN) [ptLevels]int {
	var ix [ptLevels]int
	for l := 0; l < ptLevels; l++ {
		shift := uint(9 * (ptLevels - 1 - l))
		ix[l] = int((uint64(p) >> shift) & 0x1ff)
	}
	return ix
}

// Map installs a translation from frame from to frame to with the given
// permissions, building intermediate levels as needed. Remapping an existing
// entry overwrites it.
func (t *PageTable) Map(from, to PFN, perms Perm) {
	ix := indices(from)
	node := t.root
	for l := 0; l < ptLevels-1; l++ {
		e := &node.entries[ix[l]]
		if e.next == nil {
			e.next = &ptNode{}
			e.present = true
		}
		node = e.next
	}
	leaf := &node.entries[ix[ptLevels-1]]
	if !leaf.present {
		t.mapped++
	}
	*leaf = ptEntry{pfn: to, perms: perms, present: true}
}

// MapHuge installs a 2 MiB translation: from and to must be aligned to
// HugePageFrames. The mapping terminates the walk one level early, exactly
// as hardware large pages do.
func (t *PageTable) MapHuge(from, to PFN, perms Perm) error {
	if from%HugePageFrames != 0 || to%HugePageFrames != 0 {
		return fmt.Errorf("mem: huge mapping %#x -> %#x not 2MiB aligned", uint64(from), uint64(to))
	}
	ix := indices(from)
	node := t.root
	for l := 0; l < ptLevels-2; l++ {
		e := &node.entries[ix[l]]
		if e.next == nil {
			e.next = &ptNode{}
			e.present = true
		}
		node = e.next
	}
	leaf := &node.entries[ix[ptLevels-2]]
	if leaf.next != nil {
		return fmt.Errorf("mem: huge mapping at %#x would shadow existing 4K mappings", uint64(from))
	}
	if !leaf.present {
		t.mapped++
	}
	*leaf = ptEntry{pfn: to, perms: perms, present: true, huge: true}
	return nil
}

// Unmap removes a translation, reporting whether one existed.
func (t *PageTable) Unmap(from PFN) bool {
	ix := indices(from)
	node := t.root
	for l := 0; l < ptLevels-1; l++ {
		e := &node.entries[ix[l]]
		if e.next == nil {
			return false
		}
		node = e.next
	}
	leaf := &node.entries[ix[ptLevels-1]]
	if !leaf.present {
		return false
	}
	*leaf = ptEntry{}
	t.mapped--
	return true
}

// Walk describes the result of a page-table walk.
type Walk struct {
	// PFN is the translated frame (valid only when Present).
	PFN PFN
	// Perms are the leaf permissions.
	Perms Perm
	// Present reports whether a translation exists.
	Present bool
	// LevelsTouched counts radix nodes visited, including the one where the
	// walk terminated — the quantity exit handlers charge walk cycles for.
	// A missing top-level entry costs 1; a full walk costs 4.
	LevelsTouched int
}

// Lookup walks the table for frame from, setting accessed (and, for write
// access, dirty) bits like hardware A/D-bit tracking.
func (t *PageTable) Lookup(from PFN, access Perm) Walk {
	ix := indices(from)
	node := t.root
	w := Walk{}
	for l := 0; l < ptLevels-1; l++ {
		w.LevelsTouched++
		e := &node.entries[ix[l]]
		if l == ptLevels-2 && e.present && e.huge {
			// Huge leaf: the walk ends a level early; the low 9 index bits
			// select the frame inside the 2 MiB span.
			w.Present = true
			w.PFN = e.pfn + from%HugePageFrames
			w.Perms = e.perms
			e.accessed = true
			if access.Has(PermWrite) && e.perms.Has(PermWrite) {
				e.dirty = true
			}
			return w
		}
		if e.next == nil {
			return w
		}
		node = e.next
	}
	w.LevelsTouched++
	leaf := &node.entries[ix[ptLevels-1]]
	if !leaf.present {
		return w
	}
	w.Present = true
	w.PFN = leaf.pfn
	w.Perms = leaf.perms
	leaf.accessed = true
	if access.Has(PermWrite) && leaf.perms.Has(PermWrite) {
		leaf.dirty = true
	}
	return w
}

// Translate converts a byte address through the table, preserving the page
// offset. It fails when no translation exists or the access permission is
// not granted.
func (t *PageTable) Translate(a Addr, access Perm) (Addr, error) {
	w := t.Lookup(PageOf(a), access)
	if !w.Present {
		return 0, fmt.Errorf("mem: no translation for %#x", uint64(a))
	}
	if !w.Perms.Has(access) {
		return 0, fmt.Errorf("mem: %s access to %#x denied (perms %s)", access, uint64(a), w.Perms)
	}
	return w.PFN.Base() + (a & (PageSize - 1)), nil
}

// Mapped returns the number of installed leaf translations.
func (t *PageTable) Mapped() int { return t.mapped }

// ForEach visits every installed translation in ascending frame order.
func (t *PageTable) ForEach(fn func(from, to PFN, perms Perm)) {
	var walk func(n *ptNode, prefix PFN, level int)
	walk = func(n *ptNode, prefix PFN, level int) {
		for i := range n.entries {
			e := &n.entries[i]
			if !e.present && e.next == nil {
				continue
			}
			p := prefix<<9 | PFN(i)
			if level == ptLevels-1 {
				if e.present {
					fn(p, e.pfn, e.perms)
				}
			} else if e.next != nil {
				walk(e.next, p, level+1)
			}
		}
	}
	walk(t.root, 0, 0)
}

// Entry describes one installed translation with its A/D tracking state.
type Entry struct {
	From, To PFN
	Perms    Perm
	Accessed bool
	Dirty    bool
	Huge     bool
}

// ForEachEntry visits every installed translation in ascending frame order,
// exposing the hardware A/D bits Lookup maintains — the view a hypervisor's
// dirty-page scanner has of an EPT.
func (t *PageTable) ForEachEntry(fn func(Entry)) {
	var walk func(n *ptNode, prefix PFN, level int)
	walk = func(n *ptNode, prefix PFN, level int) {
		for i := range n.entries {
			e := &n.entries[i]
			if !e.present && e.next == nil {
				continue
			}
			p := prefix<<9 | PFN(i)
			switch {
			case level == ptLevels-1:
				if e.present {
					fn(Entry{From: p, To: e.pfn, Perms: e.perms, Accessed: e.accessed, Dirty: e.dirty})
				}
			case level == ptLevels-2 && e.present && e.huge:
				fn(Entry{From: p << 9, To: e.pfn, Perms: e.perms, Accessed: e.accessed, Dirty: e.dirty, Huge: true})
			case e.next != nil:
				walk(e.next, p, level+1)
			}
		}
	}
	walk(t.root, 0, 0)
}

// Combine produces a new table composing t with next: for every mapping
// a→b in t with a mapping b→c in next, the result maps a→c with the
// intersection of permissions. This is exactly the shadow-table construction
// virtual-passthrough uses to collapse the vIOMMU chain (paper Section 3.5,
// Figure 6): the L1 virtual IOMMU's table holds the combined Ln→L1 mapping.
func (t *PageTable) Combine(next *PageTable) *PageTable {
	out := NewPageTable()
	t.ForEach(func(from, mid PFN, p1 Perm) {
		w := next.Lookup(mid, 0)
		if !w.Present {
			return
		}
		out.Map(from, w.PFN, p1&w.Perms)
	})
	return out
}

// Clear removes every translation.
func (t *PageTable) Clear() {
	t.root = &ptNode{}
	t.mapped = 0
}
