package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAddressSpaceReadWrite(t *testing.T) {
	as := NewAddressSpace("test", 1<<20)
	data := []byte("direct virtual hardware")
	if err := as.Write(0x1000, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if err := as.Read(0x1000, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatalf("read back %q, want %q", buf, data)
	}
}

func TestAddressSpaceCrossPage(t *testing.T) {
	as := NewAddressSpace("test", 1<<20)
	data := make([]byte, 3*PageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	start := Addr(PageSize - 100) // straddles 4 pages
	if err := as.Write(start, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if err := as.Read(start, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("cross-page round trip corrupted data")
	}
	if got := as.ResidentPages(); got != 4 {
		t.Fatalf("resident pages = %d, want 4", got)
	}
}

func TestAddressSpaceZeroFill(t *testing.T) {
	as := NewAddressSpace("test", 1<<16)
	buf := []byte{1, 2, 3, 4}
	if err := as.Read(0x2000, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("unwritten memory should read zero")
		}
	}
}

func TestAddressSpaceBounds(t *testing.T) {
	as := NewAddressSpace("small", PageSize)
	if err := as.Write(PageSize, []byte{1}); err == nil {
		t.Fatal("write past end should fail")
	}
	if err := as.Read(Addr(PageSize-1), make([]byte, 2)); err == nil {
		t.Fatal("read crossing end should fail")
	}
	if as.Contains(PageSize) {
		t.Fatal("Contains should reject out-of-range address")
	}
	if !as.Contains(PageSize - 1) {
		t.Fatal("Contains should accept last byte")
	}
}

func TestU64RoundTrip(t *testing.T) {
	as := NewAddressSpace("test", 1<<16)
	const v = 0x0123456789abcdef
	if err := as.WriteU64(0x100, v); err != nil {
		t.Fatal(err)
	}
	got, err := as.ReadU64(0x100)
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatalf("ReadU64 = %#x, want %#x", got, uint64(v))
	}
	// Little-endian layout check.
	var b [1]byte
	if err := as.Read(0x100, b[:]); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0xef {
		t.Fatalf("first byte %#x, want 0xef (little endian)", b[0])
	}
}

func TestDirtyLogging(t *testing.T) {
	as := NewAddressSpace("vm", 1<<20)
	as.Write(0, []byte{1})
	as.StartDirtyLog()
	as.Write(PageSize*3, []byte{2})
	as.Write(PageSize*3+5, []byte{3}) // same page, counted once
	as.Write(PageSize*7, []byte{4})
	dirty := as.CollectDirty()
	if len(dirty) != 2 || dirty[0] != 3 || dirty[1] != 7 {
		t.Fatalf("dirty pages = %v, want [3 7]", dirty)
	}
	// Collection clears the log.
	if d := as.CollectDirty(); len(d) != 0 {
		t.Fatalf("second collection returned %v, want empty", d)
	}
	as.StopDirtyLog()
	as.Write(PageSize*9, []byte{5})
	if as.DirtyLogActive() {
		t.Fatal("log should be inactive")
	}
	if d := as.CollectDirty(); d != nil {
		t.Fatal("collection with inactive log should return nil")
	}
}

func TestWrittenPages(t *testing.T) {
	as := NewAddressSpace("vm", 1<<20)
	as.Write(0, []byte{1})
	as.Write(PageSize*5, []byte{1})
	as.MarkPageDirty(9)
	w := as.WrittenPages()
	if len(w) != 3 || w[0] != 0 || w[1] != 5 || w[2] != 9 {
		t.Fatalf("written pages = %v, want [0 5 9]", w)
	}
}

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(200)
	b.Set(0)
	b.Set(63)
	b.Set(64)
	b.Set(199)
	b.Set(500) // out of range: ignored
	if b.Count() != 4 {
		t.Fatalf("Count = %d, want 4", b.Count())
	}
	if !b.Test(63) || !b.Test(64) || b.Test(65) {
		t.Fatal("Test wrong around word boundary")
	}
	b.Clear(63)
	if b.Test(63) || b.Count() != 3 {
		t.Fatal("Clear failed")
	}
	var seen []uint64
	b.ForEach(func(i uint64) { seen = append(seen, i) })
	if len(seen) != 3 || seen[0] != 0 || seen[1] != 64 || seen[2] != 199 {
		t.Fatalf("ForEach order = %v", seen)
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestBitmapOr(t *testing.T) {
	a, b := NewBitmap(128), NewBitmap(128)
	a.Set(1)
	b.Set(100)
	a.Or(b)
	if !a.Test(1) || !a.Test(100) {
		t.Fatal("Or missed bits")
	}
}

func TestBitmapCountProperty(t *testing.T) {
	f := func(idxs []uint16) bool {
		b := NewBitmap(1 << 16)
		uniq := map[uint16]bool{}
		for _, i := range idxs {
			b.Set(uint64(i))
			uniq[i] = true
		}
		return b.Count() == uint64(len(uniq))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPageTableMapLookup(t *testing.T) {
	pt := NewPageTable()
	pt.Map(0x1234, 0xabcd, PermRW)
	w := pt.Lookup(0x1234, PermRead)
	if !w.Present || w.PFN != 0xabcd {
		t.Fatalf("lookup = %+v", w)
	}
	if w.LevelsTouched != 4 {
		t.Fatalf("full walk touched %d levels, want 4", w.LevelsTouched)
	}
	miss := pt.Lookup(0x9999, PermRead)
	if miss.Present {
		t.Fatal("unmapped frame translated")
	}
	if miss.LevelsTouched < 1 || miss.LevelsTouched > 4 {
		t.Fatalf("miss touched %d levels", miss.LevelsTouched)
	}
}

func TestPageTableMissDepth(t *testing.T) {
	pt := NewPageTable()
	// Frames sharing high-level indices force deeper partial walks.
	pt.Map(0, 1, PermRW)
	w := pt.Lookup(1, PermRead) // same L1..L3 path as frame 0, leaf absent
	if w.Present {
		t.Fatal("frame 1 should be unmapped")
	}
	if w.LevelsTouched != 4 {
		t.Fatalf("adjacent miss touched %d levels, want 4", w.LevelsTouched)
	}
	far := pt.Lookup(PFN(1)<<27, PermRead) // different top-level entry
	if far.LevelsTouched != 1 {
		t.Fatalf("distant miss touched %d levels, want 1", far.LevelsTouched)
	}
}

func TestPageTableUnmap(t *testing.T) {
	pt := NewPageTable()
	pt.Map(5, 10, PermRW)
	if pt.Mapped() != 1 {
		t.Fatal("Mapped != 1")
	}
	if !pt.Unmap(5) {
		t.Fatal("Unmap of mapped frame returned false")
	}
	if pt.Unmap(5) {
		t.Fatal("double Unmap returned true")
	}
	if pt.Mapped() != 0 {
		t.Fatal("Mapped != 0 after unmap")
	}
}

func TestPageTableTranslatePermissions(t *testing.T) {
	pt := NewPageTable()
	pt.Map(1, 2, PermRead)
	if _, err := pt.Translate(PageSize+123, PermRead); err != nil {
		t.Fatalf("read translate failed: %v", err)
	}
	if _, err := pt.Translate(PageSize+123, PermWrite); err == nil {
		t.Fatal("write through read-only mapping should fail")
	}
	a, err := pt.Translate(PageSize+123, PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if a != 2*PageSize+123 {
		t.Fatalf("translated to %#x, want %#x", uint64(a), uint64(2*PageSize+123))
	}
}

func TestPageTableRemapOverwrites(t *testing.T) {
	pt := NewPageTable()
	pt.Map(1, 2, PermRW)
	pt.Map(1, 3, PermRead)
	w := pt.Lookup(1, PermRead)
	if w.PFN != 3 || w.Perms != PermRead {
		t.Fatalf("remap not applied: %+v", w)
	}
	if pt.Mapped() != 1 {
		t.Fatalf("Mapped = %d after remap, want 1", pt.Mapped())
	}
}

func TestPageTableForEachOrder(t *testing.T) {
	pt := NewPageTable()
	frames := []PFN{100, 5, 1 << 30, 77}
	for i, f := range frames {
		pt.Map(f, PFN(i), PermRW)
	}
	var got []PFN
	pt.ForEach(func(from, to PFN, p Perm) { got = append(got, from) })
	want := []PFN{5, 77, 100, 1 << 30}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", got, want)
		}
	}
}

func TestPageTableCombine(t *testing.T) {
	// L2→L1 then L1→L0, as recursive virtual-passthrough composes them.
	l2l1 := NewPageTable()
	l1l0 := NewPageTable()
	l2l1.Map(10, 20, PermRW)
	l2l1.Map(11, 21, PermRW)
	l2l1.Map(12, 99, PermRW) // dangling: no L1→L0 mapping
	l1l0.Map(20, 300, PermRW)
	l1l0.Map(21, 301, PermRead) // perms intersect
	combined := l2l1.Combine(l1l0)
	if combined.Mapped() != 2 {
		t.Fatalf("combined has %d mappings, want 2", combined.Mapped())
	}
	w := combined.Lookup(10, PermRead)
	if !w.Present || w.PFN != 300 || w.Perms != PermRW {
		t.Fatalf("combined 10 → %+v", w)
	}
	w = combined.Lookup(11, PermRead)
	if !w.Present || w.PFN != 301 || w.Perms != PermRead {
		t.Fatalf("combined 11 → %+v (perms should intersect)", w)
	}
	if combined.Lookup(12, PermRead).Present {
		t.Fatal("dangling mapping should not appear in combined table")
	}
}

func TestPageTableCombineAssociativeProperty(t *testing.T) {
	// (A∘B)∘C == A∘(B∘C) over random small tables — the invariant recursive
	// virtual-passthrough relies on when collapsing an arbitrary-depth chain.
	f := func(seeds [6]uint8) bool {
		mk := func(lo, hi uint8) *PageTable {
			pt := NewPageTable()
			for i := uint8(0); i < 8; i++ {
				pt.Map(PFN(lo%8+i), PFN(hi%8+i*2), PermRW)
			}
			return pt
		}
		a := mk(seeds[0], seeds[1])
		b := mk(seeds[2], seeds[3])
		c := mk(seeds[4], seeds[5])
		left := a.Combine(b).Combine(c)
		right := a.Combine(b.Combine(c))
		if left.Mapped() != right.Mapped() {
			return false
		}
		ok := true
		left.ForEach(func(from, to PFN, p Perm) {
			w := right.Lookup(from, 0)
			if !w.Present || w.PFN != to || w.Perms != p {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPageTableClear(t *testing.T) {
	pt := NewPageTable()
	pt.Map(1, 2, PermRW)
	pt.Clear()
	if pt.Mapped() != 0 || pt.Lookup(1, 0).Present {
		t.Fatal("Clear left mappings behind")
	}
}

func TestPermString(t *testing.T) {
	if PermRW.String() != "rw-" {
		t.Fatalf("PermRW = %q", PermRW.String())
	}
	if PermRWX.String() != "rwx" {
		t.Fatalf("PermRWX = %q", PermRWX.String())
	}
	if Perm(0).String() != "---" {
		t.Fatalf("empty perm = %q", Perm(0).String())
	}
}

func TestTranslationChainMovesBytes(t *testing.T) {
	// End-to-end: write through a two-level translation chain and observe the
	// bytes land in host memory — the data path virtual-passthrough DMA uses.
	host := NewAddressSpace("host", 1<<24)
	l1 := NewPageTable() // L1 GPA → host
	l2 := NewPageTable() // L2 GPA → L1 GPA
	l1.Map(100, 200, PermRW)
	l2.Map(50, 100, PermRW)
	combined := l2.Combine(l1)
	l2addr := Addr(50*PageSize + 17)
	hostAddr, err := combined.Translate(l2addr, PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("dma payload")
	if err := host.Write(hostAddr, payload); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(payload))
	if err := host.Read(200*PageSize+17, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("payload did not arrive at translated host address")
	}
}

func TestHugePageMapping(t *testing.T) {
	pt := NewPageTable()
	if err := pt.MapHuge(512, 2048, PermRW); err != nil {
		t.Fatal(err)
	}
	// Any frame inside the 2 MiB span translates, with a 3-level walk.
	w := pt.Lookup(512+77, PermWrite)
	if !w.Present || w.PFN != 2048+77 {
		t.Fatalf("huge lookup = %+v", w)
	}
	if w.LevelsTouched != 3 {
		t.Fatalf("huge walk touched %d levels, want 3", w.LevelsTouched)
	}
	// Frames outside the span do not.
	if pt.Lookup(512+HugePageFrames, PermRead).Present {
		t.Fatal("lookup past the huge span translated")
	}
	a, err := pt.Translate(Addr(600)*PageSize+99, PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if a != Addr(2048+600-512)*PageSize+99 {
		t.Fatalf("huge translate = %#x", uint64(a))
	}
}

func TestHugePageValidation(t *testing.T) {
	pt := NewPageTable()
	if err := pt.MapHuge(5, 2048, PermRW); err == nil {
		t.Fatal("unaligned source accepted")
	}
	if err := pt.MapHuge(512, 7, PermRW); err == nil {
		t.Fatal("unaligned target accepted")
	}
	// A huge mapping must not silently shadow existing 4K mappings.
	pt.Map(1024+3, 99, PermRW)
	if err := pt.MapHuge(1024, 4096, PermRW); err == nil {
		t.Fatal("huge mapping over existing 4K entries accepted")
	}
	// And 4K mappings in untouched regions coexist with huge ones.
	if err := pt.MapHuge(2048, 8192, PermRW); err != nil {
		t.Fatal(err)
	}
	pt.Map(4096, 1, PermRW)
	if !pt.Lookup(2048+1, PermRead).Present || !pt.Lookup(4096, PermRead).Present {
		t.Fatal("huge and 4K mappings do not coexist")
	}
}
