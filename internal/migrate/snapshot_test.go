package migrate

import (
	"bytes"
	"testing"

	"repro/internal/apic"
	"repro/internal/core"
	"repro/internal/hyper"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	r := buildRig(t, 0)
	gm := r.l2.Memory()
	addr := r.l2.MustAllocPages(3)
	payload := bytes.Repeat([]byte("suspend/resume"), 600)
	if err := gm.Write(addr, payload); err != nil {
		t.Fatal(err)
	}

	blob, err := Snapshot(r.l2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) < len(payload) {
		t.Fatalf("snapshot only %d bytes", len(blob))
	}
	if err := RestoreSnapshot(r.dst, nil, blob); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if err := r.dst.Memory().Read(addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("restored content differs")
	}
}

func TestSnapshotCarriesDVHState(t *testing.T) {
	r := buildRig(t, core.FeaturesAll)
	if err := r.dvh.ConfigureVM(r.l2); err != nil {
		t.Fatal(err)
	}
	if _, err := r.w.Execute(r.l2.VCPUs[0], hyper.ProgramTimer(5_000_000)); err != nil {
		t.Fatal(err)
	}
	blob, err := Snapshot(r.l2, r.dvh)
	if err != nil {
		t.Fatal(err)
	}

	// Resume on a fresh DVH-enabled destination stack.
	r2 := buildRig(t, core.FeaturesAll)
	if err := r2.dvh.ConfigureVM(r2.l2); err != nil {
		t.Fatal(err)
	}
	if err := RestoreSnapshot(r2.l2, r2.dvh, blob); err != nil {
		t.Fatal(err)
	}
	if r2.l2.VCPUs[0].LAPIC.TSCDeadline() == 0 {
		t.Fatal("resumed VM lost its armed virtual timer")
	}
	r2.w.Host.Machine.Engine.RunUntil(6_000_000)
	if !r2.l2.VCPUs[0].LAPIC.Pending(apic.VectorTimer) {
		t.Fatal("resumed timer never fired")
	}
}

func TestSnapshotRejectsPassthroughAndGarbage(t *testing.T) {
	r := buildRig(t, 0)
	if err := RestoreSnapshot(r.l2, nil, []byte("definitely not a snapshot")); err == nil {
		t.Fatal("garbage accepted")
	}
	blob, err := Snapshot(r.l2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Truncated snapshot must fail cleanly.
	if err := RestoreSnapshot(r.dst, nil, blob[:len(blob)/2]); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	// Snapshot into a smaller VM must fail.
	gh := r.l1.GuestHyp
	tiny, err := gh.CreateVM(hyper.VMConfig{Name: "tiny", VCPUs: 1, MemBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := RestoreSnapshot(tiny, nil, blob); err == nil {
		t.Fatal("oversized snapshot accepted by tiny VM")
	}
	if _, err := Snapshot(nil, nil); err == nil {
		t.Fatal("nil VM accepted")
	}
}
