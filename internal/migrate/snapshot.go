package migrate

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/hyper"
	"repro/internal/mem"
)

// Suspend/resume is the other I/O-interposition benefit the paper names
// alongside migration (Section 1): because DVH devices are software, the
// host can encapsulate the whole nested VM — memory image plus virtual
// hardware state — into a byte stream and bring it back later, on this host
// or another of the same kind. Device passthrough forfeits this.

// snapshotMagic identifies the serialization format.
var snapshotMagic = [8]byte{'N', 'V', 'S', 'N', 'A', 'P', '0', '1'}

// Snapshot serializes a VM's written memory pages and, when a DVH layer is
// supplied, the DVH virtual-hardware state of the (nested) VM.
func Snapshot(vm *hyper.VM, d *core.DVH) ([]byte, error) {
	if vm == nil {
		return nil, fmt.Errorf("migrate: nil VM")
	}
	for _, dev := range vm.Devices {
		if dev.Phys != nil {
			return nil, fmt.Errorf("migrate: cannot snapshot %s: physical device %s assigned", vm.Name, dev.Name)
		}
	}
	var buf bytes.Buffer
	buf.Write(snapshotMagic[:])
	pages := vm.WrittenPages()
	if err := binary.Write(&buf, binary.LittleEndian, uint64(vm.NumPages)); err != nil {
		return nil, err
	}
	if err := binary.Write(&buf, binary.LittleEndian, uint64(len(pages))); err != nil {
		return nil, err
	}
	gm := vm.Memory()
	page := make([]byte, mem.PageSize)
	for _, p := range pages {
		if err := binary.Write(&buf, binary.LittleEndian, uint64(p)); err != nil {
			return nil, err
		}
		if err := gm.Read(p.Base(), page); err != nil {
			return nil, err
		}
		buf.Write(page)
	}
	var dvhState []byte
	if d != nil && vm.Level >= 2 {
		var err error
		dvhState, err = d.SaveVMState(vm)
		if err != nil {
			return nil, err
		}
	}
	if err := binary.Write(&buf, binary.LittleEndian, uint32(len(dvhState))); err != nil {
		return nil, err
	}
	buf.Write(dvhState)
	return buf.Bytes(), nil
}

// RestoreSnapshot materializes a snapshot into a destination VM of at least
// the source's size, restoring DVH state when a layer is supplied.
func RestoreSnapshot(vm *hyper.VM, d *core.DVH, blob []byte) error {
	r := bytes.NewReader(blob)
	var magic [8]byte
	// io.ReadFull throughout: bytes.Reader.Read accepts short reads at EOF
	// with a nil error, which would silently restore a partial page from a
	// truncated snapshot.
	if _, err := io.ReadFull(r, magic[:]); err != nil || magic != snapshotMagic {
		return fmt.Errorf("migrate: not a snapshot (bad magic)")
	}
	var srcPages, count uint64
	if err := binary.Read(r, binary.LittleEndian, &srcPages); err != nil {
		return err
	}
	if mem.PFN(srcPages) > vm.NumPages {
		return fmt.Errorf("migrate: snapshot of %d pages exceeds destination %s (%d)", srcPages, vm.Name, vm.NumPages)
	}
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return err
	}
	gm := vm.Memory()
	page := make([]byte, mem.PageSize)
	for i := uint64(0); i < count; i++ {
		var pfn uint64
		if err := binary.Read(r, binary.LittleEndian, &pfn); err != nil {
			return fmt.Errorf("migrate: truncated snapshot at page %d: %w", i, err)
		}
		if _, err := io.ReadFull(r, page); err != nil {
			return fmt.Errorf("migrate: truncated snapshot content at page %d: %w", i, err)
		}
		if err := gm.Write(mem.PFN(pfn).Base(), page); err != nil {
			return err
		}
	}
	var dvhLen uint32
	if err := binary.Read(r, binary.LittleEndian, &dvhLen); err != nil {
		return err
	}
	if dvhLen > 0 {
		if int(dvhLen) > r.Len() {
			return fmt.Errorf("migrate: DVH state length %d exceeds remaining %d bytes", dvhLen, r.Len())
		}
		state := make([]byte, dvhLen)
		if _, err := io.ReadFull(r, state); err != nil {
			return fmt.Errorf("migrate: truncated DVH state: %w", err)
		}
		if d == nil {
			return fmt.Errorf("migrate: snapshot carries DVH state but no DVH layer supplied")
		}
		if err := d.RestoreVMState(vm, state); err != nil {
			return err
		}
	}
	return nil
}
