package migrate

import (
	"time"

	"repro/internal/core"
	"repro/internal/hyper"
	"repro/internal/mem"
)

// churner generates the workload's memory traffic during migration: CPU
// writes through guest memory (visible to every dirty log) and device DMA
// writes through the VP devices' DMA views (visible only host-side). Writes
// are real, so a page the migration misses ends up content-divergent at the
// destination.
type churner struct {
	vm    *hyper.VM
	vp    []*core.VPState
	churn Churn

	cpuCursor mem.PFN
	dmaCursor mem.PFN
	// dmaTouched tracks pages dirtied by DMA after their last CPU write, the
	// candidates for silent loss without the migration capability.
	dmaTouched map[mem.PFN]bool
	serial     uint64
}

func newChurner(vm *hyper.VM, vp []*core.VPState, c Churn) *churner {
	if c.WorkingSetPages <= 0 {
		c.WorkingSetPages = 1024
	}
	if c.WorkingSetPages > int(vm.NumPages) {
		c.WorkingSetPages = int(vm.NumPages)
	}
	return &churner{vm: vm, vp: vp, churn: c, dmaTouched: make(map[mem.PFN]bool)}
}

// touchWorkingSet writes identifiable content to every working-set page so
// the first migration pass ships real data.
func (c *churner) touchWorkingSet() error {
	gm := c.vm.Memory()
	for i := 0; i < c.churn.WorkingSetPages; i++ {
		c.serial++
		if err := gm.WriteU64(mem.PFN(i).Base(), c.serial); err != nil {
			return err
		}
	}
	return nil
}

// run advances the workload for the given wall-time span, performing the
// corresponding number of CPU and DMA page writes.
func (c *churner) run(d time.Duration) error {
	cpuWrites := int(c.churn.CPUPagesPerSec * d.Seconds())
	dmaWrites := int(c.churn.DMAPagesPerSec * d.Seconds())
	ws := mem.PFN(c.churn.WorkingSetPages)
	gm := c.vm.Memory()
	for i := 0; i < cpuWrites; i++ {
		pg := c.cpuCursor % ws
		c.cpuCursor++
		c.serial++
		if err := gm.WriteU64(pg.Base(), c.serial); err != nil {
			return err
		}
		delete(c.dmaTouched, pg)
	}
	if len(c.vp) > 0 {
		for i := 0; i < dmaWrites; i++ {
			// Spread DMA over the upper half of the working set, offset from
			// the CPU cursor so the two streams overlap only partially.
			pg := (c.dmaCursor + ws/2) % ws
			c.dmaCursor++
			c.serial++
			var buf [8]byte
			for k := 0; k < 8; k++ {
				buf[k] = byte(c.serial >> (8 * k))
			}
			if err := c.vp[0].Dev.DMAView.Write(pg.Base(), buf[:]); err != nil {
				return err
			}
			c.dmaTouched[pg] = true
		}
	}
	return nil
}

// missedDMA reports how many DMA-dirtied pages the migration could have
// missed: zero when the capability exported them, the accumulated count
// otherwise. (VerifyDest gives ground truth; this is the accounting view.)
func (c *churner) missedDMA(usedCap bool) int {
	if usedCap {
		return 0
	}
	return len(c.dmaTouched)
}
