// Package migrate implements pre-copy live migration for the simulator,
// reproducing the paper's Section 4 migration experiments and the Section
// 3.6 design: iterative memory copying with dirty-page logging, a
// bandwidth-limited transfer model (QEMU's default 268 Mbps), device-state
// capture, and — the part DVH makes possible — migration of nested VMs that
// use virtual-passthrough, where pages dirtied by device DMA are invisible
// to the guest hypervisor unless the host exports them through the PCI
// migration capability.
//
// Pages really move: the destination VM receives the source's bytes, so a
// missed dirty page shows up as a content mismatch, exactly the data-loss
// failure the paper's migration capability exists to prevent.
package migrate

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/hyper"
	"repro/internal/mem"
	"repro/internal/pci"
)

// DefaultBandwidth is QEMU's default migration transfer limit, used in the
// paper's experiments: 268 Mbps.
const DefaultBandwidth = 268_000_000

// Options tunes a migration.
type Options struct {
	// BandwidthBitsPerSec limits transfer (default DefaultBandwidth).
	BandwidthBitsPerSec uint64
	// DowntimeLimit is the stop-and-copy budget: pre-copy iterates until the
	// remaining dirty set fits (default 300 ms, QEMU's default).
	DowntimeLimit time.Duration
	// MaxRounds bounds pre-copy iteration (default 30, QEMU-like).
	MaxRounds int
}

func (o *Options) fill() {
	if o.BandwidthBitsPerSec == 0 {
		o.BandwidthBitsPerSec = DefaultBandwidth
	}
	if o.DowntimeLimit == 0 {
		o.DowntimeLimit = 300 * time.Millisecond
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 30
	}
}

// Churn models the workload running during migration: how many distinct
// pages its CPUs and its devices' DMA dirty per second.
type Churn struct {
	// WorkingSetPages is the memory footprint the workload keeps touching.
	WorkingSetPages int
	// CPUPagesPerSec is the guest-visible dirtying rate.
	CPUPagesPerSec float64
	// DMAPagesPerSec is the device-DMA dirtying rate (invisible to guest
	// hypervisors under virtual-passthrough).
	DMAPagesPerSec float64
}

// Plan describes one migration.
type Plan struct {
	// VM is the source. Migrating an L1 VM moves the whole stack inside it;
	// migrating a nested VM moves only that VM (the guest hypervisor's job).
	VM *hyper.VM
	// Dest, when non-nil, receives the memory image; it must be at least as
	// large as the source. With a nil Dest the transfer is accounted but not
	// materialized.
	Dest *hyper.VM
	// VP lists the virtual-passthrough devices assigned to the VM, whose DMA
	// dirt only the host can see.
	VP []*core.VPState
	// UseMigrationCap drives the paper's PCI migration capability: without
	// it, a VM using virtual-passthrough either cannot migrate safely or
	// silently loses DMA-dirtied pages (exposed by VerifyDest).
	UseMigrationCap bool
	// DVHSource/DVHDest, when set together with Dest, transfer the nested
	// VM's DVH virtual-hardware state (timer values, offsets, enable bits,
	// VCIMT) across — the Section 3.6 requirement that virtual hardware
	// state be saved and restored like any other device state.
	DVHSource *core.DVH
	DVHDest   *core.DVH
	// Churn is the concurrent workload model.
	Churn Churn
	// Options tune bandwidth and downtime.
	Options Options
}

// Report summarizes a migration.
type Report struct {
	// Rounds is the number of pre-copy iterations (excluding stop-and-copy).
	Rounds int
	// PagesSent and BytesSent total the transfer.
	PagesSent uint64
	BytesSent uint64
	// TotalTime spans start to resume-at-destination.
	TotalTime time.Duration
	// Downtime is the stop-and-copy phase.
	Downtime time.Duration
	// DeviceStateBytes is the captured device state shipped in the blackout.
	DeviceStateBytes int
	// MissedDMAPages counts pages dirtied by DMA that the guest-visible log
	// never saw and the migration never re-sent — nonzero means a corrupted
	// destination (the failure mode the migration capability prevents).
	MissedDMAPages int
}

// transferTime converts bytes to wire time at the configured bandwidth.
func (o *Options) transferTime(bytes uint64) time.Duration {
	return time.Duration(float64(bytes*8) / float64(o.BandwidthBitsPerSec) * float64(time.Second))
}

// pagesFitting returns how many pages fit in a time budget.
func (o *Options) pagesFitting(d time.Duration) uint64 {
	bytes := uint64(float64(o.BandwidthBitsPerSec) / 8 * d.Seconds())
	return bytes / mem.PageSize
}

// Run executes the migration.
func (p *Plan) Run() (Report, error) {
	p.Options.fill()
	var rep Report
	if p.VM == nil {
		return rep, fmt.Errorf("migrate: no source VM")
	}
	if p.Dest != nil && p.Dest.NumPages < p.VM.NumPages {
		return rep, fmt.Errorf("migrate: destination %s (%d pages) smaller than source %s (%d)",
			p.Dest.Name, p.Dest.NumPages, p.VM.Name, p.VM.NumPages)
	}
	for _, dev := range p.VM.Devices {
		if dev.Phys != nil {
			return rep, fmt.Errorf("migrate: %s has physical device %s assigned; migration does not work using passthrough", p.VM.Name, dev.Name)
		}
	}
	if len(p.VP) > 0 && !p.UseMigrationCap {
		// The paper's point: a guest hypervisor would normally refuse this
		// configuration outright. We proceed so the data-loss failure is
		// observable, but only callers that explicitly opted out get here.
		for _, vp := range p.VP {
			vp.HostDirty.Reset()
		}
	}

	// Touch the working set so the first pass has real content to ship.
	churnState := newChurner(p.VM, p.VP, p.Churn)
	if err := churnState.touchWorkingSet(); err != nil {
		return rep, err
	}

	// Begin logging: the guest-visible log plus (with the capability) the
	// host's DMA log behind the PCI migration capability.
	p.VM.StartDirtyLog()
	defer p.VM.StopDirtyLog()
	if p.UseMigrationCap {
		for _, vp := range p.VP {
			if err := vp.MigCap.GuestWriteCtrl(pci.MigCtrlDirtyLog); err != nil {
				return rep, err
			}
		}
	}

	// First pass: every written page.
	pending := p.VM.WrittenPages()
	for {
		bytes := uint64(len(pending)) * mem.PageSize
		dur := p.Options.transferTime(bytes)
		if err := p.copyPages(pending, &rep); err != nil {
			return rep, err
		}
		rep.TotalTime += dur
		rep.Rounds++

		// The workload keeps running during the round and dirties pages.
		if err := churnState.run(dur); err != nil {
			return rep, err
		}

		dirty := p.collectDirty()
		if uint64(len(dirty)) <= p.Options.pagesFitting(p.Options.DowntimeLimit) || rep.Rounds >= p.Options.MaxRounds {
			// Stop-and-copy: blackout, ship the remainder plus device state.
			var blob []byte
			for _, vp := range p.VP {
				if p.UseMigrationCap {
					if err := vp.MigCap.GuestWriteCtrl(pci.MigCtrlDirtyLog | pci.MigCtrlCapture); err != nil {
						return rep, err
					}
					blob = append(blob, vp.MigCap.CapturedState()...)
				}
			}
			if p.DVHSource != nil && p.Dest != nil && p.DVHDest != nil {
				dvhState, err := p.DVHSource.SaveVMState(p.VM)
				if err != nil {
					return rep, err
				}
				blob = append(blob, dvhState...)
				if err := p.DVHDest.RestoreVMState(p.Dest, dvhState); err != nil {
					return rep, err
				}
			}
			rep.DeviceStateBytes = len(blob)
			if err := p.copyPages(dirty, &rep); err != nil {
				return rep, err
			}
			rep.Downtime = p.Options.transferTime(uint64(len(dirty))*mem.PageSize + uint64(len(blob)))
			rep.TotalTime += rep.Downtime
			if p.Dest != nil && p.UseMigrationCap {
				for _, vp := range p.VP {
					destDev := p.Dest.FindDevice(vp.Dev.Class)
					if destDev != nil {
						if err := core.RestoreVPDeviceState(destDev, vp.MigCap.CapturedState()); err != nil {
							return rep, err
						}
					}
				}
			}
			rep.MissedDMAPages = churnState.missedDMA(p.UseMigrationCap)
			return rep, nil
		}
		pending = dirty
	}
}

// collectDirty merges the guest-visible log with the DMA log exported by the
// migration capability (when in use).
func (p *Plan) collectDirty() []mem.PFN {
	set := map[mem.PFN]bool{}
	for _, pg := range p.VM.CollectDirty() {
		set[pg] = true
	}
	if p.UseMigrationCap {
		for _, vp := range p.VP {
			for _, pg := range vp.CollectDMADirty() {
				set[pg] = true
			}
		}
	}
	out := make([]mem.PFN, 0, len(set))
	for pg := range set {
		out = append(out, pg)
	}
	sortPFNs(out)
	return out
}

// copyPages materializes the transfer into the destination (when present)
// and accounts it.
func (p *Plan) copyPages(pages []mem.PFN, rep *Report) error {
	rep.PagesSent += uint64(len(pages))
	rep.BytesSent += uint64(len(pages)) * mem.PageSize
	if p.Dest == nil {
		return nil
	}
	buf := make([]byte, mem.PageSize)
	src := p.VM.Memory()
	dst := p.Dest.Memory()
	for _, pg := range pages {
		if err := src.Read(pg.Base(), buf); err != nil {
			return err
		}
		if err := dst.Write(pg.Base(), buf); err != nil {
			return err
		}
	}
	return nil
}

// VerifyDest compares every written source page against the destination,
// returning the mismatching pages. After a correct migration it is empty;
// after migrating a VP configuration without the migration capability it
// exposes the DMA-dirtied pages that were lost.
func (p *Plan) VerifyDest() ([]mem.PFN, error) {
	if p.Dest == nil {
		return nil, fmt.Errorf("migrate: no destination to verify")
	}
	var bad []mem.PFN
	sbuf := make([]byte, mem.PageSize)
	dbuf := make([]byte, mem.PageSize)
	src, dst := p.VM.Memory(), p.Dest.Memory()
	for _, pg := range p.VM.WrittenPages() {
		if err := src.Read(pg.Base(), sbuf); err != nil {
			return nil, err
		}
		if err := dst.Read(pg.Base(), dbuf); err != nil {
			return nil, err
		}
		if !equal(sbuf, dbuf) {
			bad = append(bad, pg)
		}
	}
	return bad, nil
}

func equal(a, b []byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortPFNs(s []mem.PFN) {
	// Insertion sort: dirty sets per round are small and nearly ordered.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
