package migrate

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hyper"
	"repro/internal/machine"
	"repro/internal/vmx"
)

// rig holds a source stack and a destination twin on a second machine.
type rig struct {
	dvh  *core.DVH
	w    *hyper.World
	l1   *hyper.VM
	l2   *hyper.VM
	dst  *hyper.VM // destination twin of l2 on machine B
	vp   []*core.VPState
	vpOK bool
}

func buildRig(t *testing.T, features core.Features) *rig {
	t.Helper()
	mkStack := func(name string) (*hyper.World, *core.DVH, *hyper.VM, *hyper.VM) {
		m := machine.MustNew(machine.Config{Name: name, CPUs: 10, MemoryBytes: 64 << 30, Caps: vmx.HardwareCaps})
		host := hyper.NewHost(m, hyper.KVM{})
		w := hyper.NewWorld(host)
		var d *core.DVH
		if features != 0 {
			var err error
			if d, err = core.Enable(w, features); err != nil {
				t.Fatal(err)
			}
		}
		l1, err := host.CreateVM(hyper.VMConfig{Name: "L1", VCPUs: 6, MemBytes: 8 << 30})
		if err != nil {
			t.Fatal(err)
		}
		gh := l1.InstallHypervisor(hyper.KVM{}, "kvm-L1")
		l2, err := gh.CreateVM(hyper.VMConfig{Name: "L2", VCPUs: 4, MemBytes: 2 << 30})
		if err != nil {
			t.Fatal(err)
		}
		return w, d, l1, l2
	}
	w, d, l1, l2 := mkStack("src")
	_, dd, _, dst := mkStack("dst")
	r := &rig{dvh: d, w: w, l1: l1, l2: l2, dst: dst}
	if features.Has(core.FeatureVirtualPassthrough) {
		dev, err := d.AttachVirtualPassthroughNet(l2, "vp-net")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dd.AttachVirtualPassthroughNet(dst, "vp-net"); err != nil {
			t.Fatal(err)
		}
		vp, _ := d.VPStateOf(dev)
		r.vp = []*core.VPState{vp}
		r.vpOK = true
	}
	return r
}

func TestMigrationParavirtCorrect(t *testing.T) {
	r := buildRig(t, 0)
	if _, err := hyper.AttachParavirtNet(r.l1, "net-l1"); err != nil {
		t.Fatal(err)
	}
	if _, err := hyper.AttachParavirtNet(r.l2, "net-l2"); err != nil {
		t.Fatal(err)
	}
	p := &Plan{
		VM: r.l2, Dest: r.dst,
		// Dirty faster than one downtime budget's worth per round so
		// pre-copy must iterate before converging.
		Churn: Churn{WorkingSetPages: 4096, CPUPagesPerSec: 6000},
	}
	rep, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds < 2 {
		t.Errorf("pre-copy converged in %d rounds; expected iteration under churn", rep.Rounds)
	}
	if rep.Downtime > p.Options.DowntimeLimit+50*time.Millisecond {
		t.Errorf("downtime %v exceeds limit %v", rep.Downtime, p.Options.DowntimeLimit)
	}
	if rep.PagesSent < 4096 {
		t.Errorf("sent %d pages, less than the working set", rep.PagesSent)
	}
	bad, err := p.VerifyDest()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("destination diverges on %d pages", len(bad))
	}
}

func TestMigrationVPWithCapabilityCorrect(t *testing.T) {
	r := buildRig(t, core.FeaturesVP)
	p := &Plan{
		VM: r.l2, Dest: r.dst, VP: r.vp, UseMigrationCap: true,
		Churn: Churn{WorkingSetPages: 4096, CPUPagesPerSec: 1500, DMAPagesPerSec: 800},
	}
	rep, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.MissedDMAPages != 0 {
		t.Fatalf("capability in use but %d DMA pages reported missed", rep.MissedDMAPages)
	}
	if rep.DeviceStateBytes == 0 {
		t.Fatal("no device state shipped in the blackout")
	}
	bad, err := p.VerifyDest()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("destination diverges on %d pages despite the migration capability", len(bad))
	}
}

func TestMigrationVPWithoutCapabilityLosesDMAPages(t *testing.T) {
	// The Section 3.6 failure mode: the guest hypervisor cannot see device
	// DMA, so without the capability the destination is corrupted.
	r := buildRig(t, core.FeaturesVP)
	p := &Plan{
		VM: r.l2, Dest: r.dst, VP: r.vp, UseMigrationCap: false,
		Churn: Churn{WorkingSetPages: 4096, CPUPagesPerSec: 1500, DMAPagesPerSec: 800},
	}
	rep, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.MissedDMAPages == 0 {
		t.Fatal("expected missed DMA pages without the capability")
	}
	bad, err := p.VerifyDest()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) == 0 {
		t.Fatal("destination should diverge: DMA dirt was never re-sent")
	}
}

func TestMigrationPhysicalPassthroughRefused(t *testing.T) {
	m := machine.MustNew(machine.Config{Name: "pt", CPUs: 10, MemoryBytes: 64 << 30, Caps: vmx.HardwareCaps, NICVFs: 2})
	host := hyper.NewHost(m, hyper.KVM{})
	hyper.NewWorld(host)
	l1, err := host.CreateVM(hyper.VMConfig{Name: "L1", VCPUs: 6, MemBytes: 8 << 30})
	if err != nil {
		t.Fatal(err)
	}
	l1.ProvideVIOMMU(true)
	gh := l1.InstallHypervisor(hyper.KVM{}, "kvm-L1")
	l2, err := gh.CreateVM(hyper.VMConfig{Name: "L2", VCPUs: 4, MemBytes: 2 << 30})
	if err != nil {
		t.Fatal(err)
	}
	vfs, err := m.CreateVFs(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hyper.AttachPassthroughNIC(l2, vfs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := (&Plan{VM: l2, Churn: Churn{WorkingSetPages: 128}}).Run(); err == nil {
		t.Fatal("migration with a physical passthrough device must be refused")
	}
}

func TestMigrationWholeStackCostsMore(t *testing.T) {
	// Paper Section 4: migrating a nested VM along with its guest hypervisor
	// is roughly twice as expensive due to the extra memory state.
	r := buildRig(t, 0)
	nestedChurn := Churn{WorkingSetPages: 4096, CPUPagesPerSec: 500}
	nested := &Plan{VM: r.l2, Churn: nestedChurn}
	nrep, err := nested.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The L1's written set includes everything the nested VM wrote plus the
	// L1 hypervisor's own working set.
	l1churn := Churn{WorkingSetPages: 4096, CPUPagesPerSec: 500}
	whole := &Plan{VM: r.l1, Churn: l1churn}
	wrep, err := whole.Run()
	if err != nil {
		t.Fatal(err)
	}
	if wrep.BytesSent <= nrep.BytesSent {
		t.Errorf("whole-stack migration sent %d bytes, nested-only %d; stack must cost more",
			wrep.BytesSent, nrep.BytesSent)
	}
	if wrep.TotalTime <= nrep.TotalTime {
		t.Errorf("whole-stack time %v should exceed nested-only %v", wrep.TotalTime, nrep.TotalTime)
	}
}

func TestMigrationValidation(t *testing.T) {
	r := buildRig(t, 0)
	if _, err := (&Plan{}).Run(); err == nil {
		t.Fatal("nil source accepted")
	}
	small := r.l2
	big := r.l1
	if _, err := (&Plan{VM: big, Dest: small, Churn: Churn{WorkingSetPages: 16}}).Run(); err == nil {
		t.Fatal("undersized destination accepted")
	}
}

func TestTransferMath(t *testing.T) {
	o := Options{}
	o.fill()
	// 268 Mbps: 33.5 MB/s; one 4 KiB page ≈ 122 µs.
	d := o.transferTime(4096)
	if d < 100*time.Microsecond || d > 150*time.Microsecond {
		t.Fatalf("one page transfer = %v", d)
	}
	if got := o.pagesFitting(o.DowntimeLimit); got == 0 {
		t.Fatal("downtime budget fits zero pages")
	}
}

func TestHigherBandwidthShortensMigration(t *testing.T) {
	r := buildRig(t, 0)
	slow := &Plan{VM: r.l2, Churn: Churn{WorkingSetPages: 2048, CPUPagesPerSec: 300}}
	srep, err := slow.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2 := buildRig(t, 0)
	fast := &Plan{
		VM: r2.l2, Churn: Churn{WorkingSetPages: 2048, CPUPagesPerSec: 300},
		Options: Options{BandwidthBitsPerSec: 10 * DefaultBandwidth},
	}
	frep, err := fast.Run()
	if err != nil {
		t.Fatal(err)
	}
	if frep.TotalTime >= srep.TotalTime {
		t.Errorf("10x bandwidth did not shorten migration: %v vs %v", frep.TotalTime, srep.TotalTime)
	}
}

func TestMigrationMaxRoundsUnderHeavyChurn(t *testing.T) {
	// A workload dirtying faster than the link can drain never converges;
	// migration must cap at MaxRounds and stop-and-copy whatever remains.
	r := buildRig(t, 0)
	p := &Plan{
		VM:      r.l2,
		Churn:   Churn{WorkingSetPages: 8192, CPUPagesPerSec: 1_000_000},
		Options: Options{MaxRounds: 5},
	}
	rep, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != 5 {
		t.Fatalf("rounds = %d, want the MaxRounds cap", rep.Rounds)
	}
	// The forced blackout exceeds the configured budget — the tradeoff QEMU
	// exposes the same way.
	if rep.Downtime <= p.Options.DowntimeLimit {
		t.Fatalf("forced stop-and-copy downtime %v should exceed the %v budget", rep.Downtime, p.Options.DowntimeLimit)
	}
}
