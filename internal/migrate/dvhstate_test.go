package migrate

import (
	"testing"

	"repro/internal/apic"
	"repro/internal/core"
	"repro/internal/hyper"
	"repro/internal/machine"
	"repro/internal/vmx"
)

// TestMigrationCarriesDVHState migrates a nested VM with an armed virtual
// timer through a full Plan and checks the timer fires on the destination —
// the paper's Section 3.6 requirement that virtual-hardware state move with
// the VM.
func TestMigrationCarriesDVHState(t *testing.T) {
	mk := func(name string) (*hyper.World, *core.DVH, *hyper.VM) {
		m := machine.MustNew(machine.Config{Name: name, CPUs: 10, MemoryBytes: 64 << 30, Caps: vmx.HardwareCaps})
		host := hyper.NewHost(m, hyper.KVM{})
		w := hyper.NewWorld(host)
		d, err := core.Enable(w, core.FeaturesAll)
		if err != nil {
			t.Fatal(err)
		}
		l1, err := host.CreateVM(hyper.VMConfig{Name: "L1", VCPUs: 6, MemBytes: 8 << 30})
		if err != nil {
			t.Fatal(err)
		}
		gh := l1.InstallHypervisor(hyper.KVM{}, "kvm-L1")
		l2, err := gh.CreateVM(hyper.VMConfig{Name: "L2", VCPUs: 4, MemBytes: 2 << 30})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.ConfigureVM(l2); err != nil {
			t.Fatal(err)
		}
		return w, d, l2
	}
	wSrc, dSrc, src := mk("src")
	wDst, dDst, dst := mk("dst")

	// Arm the virtual timer on the source before migrating.
	if _, err := wSrc.Execute(src.VCPUs[0], hyper.ProgramTimer(2_000_000)); err != nil {
		t.Fatal(err)
	}

	plan := &Plan{
		VM: src, Dest: dst,
		DVHSource: dSrc, DVHDest: dDst,
		Churn: Churn{WorkingSetPages: 512, CPUPagesPerSec: 200},
	}
	rep, err := plan.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeviceStateBytes == 0 {
		t.Fatal("DVH state not shipped in the blackout")
	}
	dv := dst.VCPUs[0]
	if dv.LAPIC.TSCDeadline() == 0 {
		t.Fatal("virtual timer not re-armed at the destination")
	}
	wDst.Host.Machine.Engine.RunUntil(3_000_000)
	if !dv.LAPIC.Pending(apic.VectorTimer) {
		t.Fatal("migrated timer never fired at the destination")
	}
	// Virtual IPIs work immediately at the destination (VCIMT rebuilt).
	if _, err := wDst.Execute(dst.VCPUs[0], hyper.SendIPI(2, apic.VectorCallFunc)); err != nil {
		t.Fatal(err)
	}
	if !dst.VCPUs[2].LAPIC.Pending(apic.VectorCallFunc) {
		t.Fatal("destination VCIMT did not route IPIs")
	}
}
