package nvsim_test

import (
	"strings"
	"testing"

	nvsim "repro"
)

func TestFacadeProfiles(t *testing.T) {
	if len(nvsim.Profiles()) != 7 {
		t.Fatalf("Profiles() returned %d workloads", len(nvsim.Profiles()))
	}
}

func TestFacadeUnknownWorkload(t *testing.T) {
	st, err := nvsim.Build(nvsim.Spec{Depth: 1, IO: nvsim.IOParavirt})
	if err != nil {
		t.Fatal(err)
	}
	_, err = nvsim.RunWorkload(st, "Quake", 10)
	if err == nil {
		t.Fatal("unknown workload accepted")
	}
	var uw *nvsim.UnknownWorkloadError
	if !asUnknown(err, &uw) || uw.Name != "Quake" {
		t.Fatalf("error type wrong: %v", err)
	}
	if !strings.Contains(err.Error(), "Quake") {
		t.Fatalf("error message: %v", err)
	}
}

// asUnknown is errors.As without the import churn.
func asUnknown(err error, target **nvsim.UnknownWorkloadError) bool {
	if e, ok := err.(*nvsim.UnknownWorkloadError); ok {
		*target = e
		return true
	}
	return false
}

func TestFacadeFeatureConstants(t *testing.T) {
	if !nvsim.FeaturesAll.Has(nvsim.FeatureVirtualPassthrough |
		nvsim.FeatureVIOMMUPostedInterrupts | nvsim.FeatureVirtualIPIs |
		nvsim.FeatureVirtualTimers | nvsim.FeatureVirtualIdle |
		nvsim.FeatureDirectTimerDelivery) {
		t.Fatal("FeaturesAll missing mechanisms")
	}
	if nvsim.FeaturesVP.Has(nvsim.FeatureVirtualTimers) {
		t.Fatal("FeaturesVP must be VP only")
	}
}

func TestFacadeExperimentPassthrough(t *testing.T) {
	rows, err := nvsim.Table3()
	if err != nil {
		t.Fatal(err)
	}
	out := nvsim.FormatTable3(rows)
	if !strings.Contains(out, "Hypercall") {
		t.Fatal("FormatTable3 broken through the facade")
	}
	if _, ok := nvsim.OverheadOf(nil, "x", "y"); ok {
		t.Fatal("OverheadOf on empty results")
	}
}

func TestFacadeSnapshotRoundTrip(t *testing.T) {
	src, err := nvsim.Build(nvsim.Spec{Depth: 2, IO: nvsim.IODVH})
	if err != nil {
		t.Fatal(err)
	}
	addr := src.Target.MustAllocPages(1)
	if err := src.Target.Memory().Write(addr, []byte("facade")); err != nil {
		t.Fatal(err)
	}
	blob, err := nvsim.Snapshot(src.Target, src.DVH)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := nvsim.Build(nvsim.Spec{Depth: 2, IO: nvsim.IODVH})
	if err != nil {
		t.Fatal(err)
	}
	if err := nvsim.RestoreSnapshot(dst.Target, dst.DVH, blob); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	dst.Target.Memory().Read(addr, buf)
	if string(buf) != "facade" {
		t.Fatalf("restored %q", buf)
	}
}
